// Clean-Clean ER across two heterogeneous sources: an IMDB-like and a
// DBpedia-like movie catalog with different schemas (4 vs 7 attributes).
// No schema alignment is performed — the schema-agnostic methods never
// look at attribute names. PPS emits cross-source candidate pairs
// best-first; progressive recall is reported at increasing budgets.
//
//   $ ./cross_source_linkage [scale]   (default 0.2 of the paper's 28k x 23k)

#include <cstdio>
#include <cstdlib>
#include <optional>

#include "datagen/datagen.h"
#include "eval/table.h"
#include "progressive/pps.h"
#include "progressive/workflow.h"

int main(int argc, char** argv) {
  using namespace sper;

  DatagenOptions gen;
  gen.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  Result<DatasetBundle> dataset = GenerateDataset("movies", gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  const GroundTruth& truth = dataset.value().truth;
  std::printf("source 1 (IMDB-like):    %zu films\n", store.source1_size());
  std::printf("source 2 (DBpedia-like): %zu films\n", store.source2_size());
  std::printf("true cross-source matches: %zu\n\n", truth.num_matches());

  // The Token Blocking Workflow (Sec. 7): blocking + purging + filtering.
  BlockCollection blocks = BuildTokenWorkflowBlocks(store);
  std::printf("workflow blocks: %zu (%llu candidate comparisons, vs %llu "
              "brute force)\n\n",
              blocks.size(),
              static_cast<unsigned long long>(blocks.AggregateCardinality()),
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(store.source1_size()) *
                  store.source2_size()));

  PpsEmitter pps(store, blocks);

  TextTable table({"ec* (comparisons / matches)", "recall"});
  const double num_matches = static_cast<double>(truth.num_matches());
  std::size_t emitted = 0, found = 0;
  for (double target : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    const std::size_t ec_target =
        static_cast<std::size_t>(target * num_matches);
    while (emitted < ec_target) {
      std::optional<Comparison> c = pps.Next();
      if (!c.has_value()) break;
      ++emitted;
      if (truth.AreMatching(c->i, c->j)) ++found;
    }
    table.AddRow({FormatDouble(target, 1),
                  FormatDouble(static_cast<double>(found) / num_matches, 3)});
  }
  table.Print();
  std::printf("\nMost matches arrive within the first ~1-2x|D_P| "
              "comparisons — the pay-as-you-go property.\n");
  return 0;
}
