#ifndef SPER_ENGINE_ENGINE_H_
#define SPER_ENGINE_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/comparison.h"
#include "progressive/emitter.h"

/// \file engine.h
/// The abstract engine interface of the serving layer. Every engine —
/// plain (`ProgressiveEngine`), sharded (`ShardedEngine`), and whatever
/// comes next — is a `ProgressiveEmitter` plus the serving contract the
/// `Resolver` builds on: a pay-as-you-go budget, an emission counter and
/// unified initialization diagnostics. `BudgetedEngine` implements that
/// contract once, so concrete engines only provide the unbudgeted stream.

namespace sper {

/// One timed step of an engine's initialization, e.g. token blocking on
/// shard 2. Phase names are the telemetry phase names ("token_blocking",
/// "block_purging", "block_filtering", "method_build", ...).
struct InitPhase {
  std::string name;
  /// Shard the phase ran on; 0 for an unsharded engine, and for
  /// shard-spanning phases such as "partition".
  std::size_t shard = 0;
  double seconds = 0.0;
};

/// Aggregate facts about an engine's initialization phase, unified across
/// plain and sharded engines (diagnostics / benches).
struct InitStats {
  /// Wall-clock seconds spent in the engine's constructor. The per-phase
  /// breakdown is in `phases`; init_seconds stays the authoritative total
  /// (phases can overlap under concurrent shard construction, so their
  /// sum may exceed it).
  double init_seconds = 0.0;
  /// |B| of the workflow collection, summed over shards (0 for the
  /// sort-based methods).
  std::size_t num_blocks = 0;
  /// ||B|| of the workflow collection, summed over shards (0 for the
  /// sort-based methods).
  std::uint64_t aggregate_cardinality = 0;
  /// Profiles per shard, in shard order; empty for an unsharded engine.
  std::vector<std::size_t> shard_sizes;
  /// Per-phase breakdown of init_seconds, in execution order per shard.
  std::vector<InitPhase> phases;
};

/// The engine interface: a ranked comparison stream (Next/name, inherited
/// from ProgressiveEmitter) plus budget accounting and init diagnostics.
///
/// Engines are NOT thread-safe: one consumer drains Next() at a time
/// (`ResolverSession` serializes concurrent requests on top of this).
class Engine : public ProgressiveEmitter {
 public:
  /// Comparisons emitted so far.
  virtual std::uint64_t emitted() const = 0;

  /// True once the configured pay-as-you-go budget has been spent (never
  /// for budget 0, which means unlimited).
  virtual bool BudgetExhausted() const = 0;

  /// Initialization diagnostics.
  virtual const InitStats& init_stats() const = 0;

  /// Number of hash shards serving the stream (1 for a plain engine).
  virtual std::size_t num_shards() const = 0;
};

/// Implements the budget and stats accounting of the Engine contract once:
/// Next() charges the budget and counts emissions, concrete engines only
/// implement NextUnbudgeted(). Derived constructors fill `stats_` and set
/// `budget_` (0 = unlimited).
class BudgetedEngine : public Engine {
 public:
  /// Emission phase: the next best comparison, honoring the budget.
  std::optional<Comparison> Next() final {
    if (BudgetExhausted()) return std::nullopt;
    std::optional<Comparison> next = NextUnbudgeted();
    if (next.has_value()) ++emitted_;
    return next;
  }

  std::uint64_t emitted() const final { return emitted_; }

  bool BudgetExhausted() const final {
    return budget_ != 0 && emitted_ >= budget_;
  }

  const InitStats& init_stats() const final { return stats_; }

 protected:
  /// The next comparison of the underlying stream, ignoring the budget.
  virtual std::optional<Comparison> NextUnbudgeted() = 0;

  /// Filled by the derived constructor (the initialization phase).
  InitStats stats_;
  /// Maximum emissions before Next() returns nullopt; 0 = unlimited.
  std::uint64_t budget_ = 0;

 private:
  std::uint64_t emitted_ = 0;
};

}  // namespace sper

#endif  // SPER_ENGINE_ENGINE_H_
