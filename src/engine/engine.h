#ifndef SPER_ENGINE_ENGINE_H_
#define SPER_ENGINE_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/comparison.h"
#include "core/status.h"
#include "parallel/cancel.h"
#include "progressive/emitter.h"

/// \file engine.h
/// The abstract engine interface of the serving layer. Every engine —
/// plain (`ProgressiveEngine`), sharded (`ShardedEngine`), and whatever
/// comes next — is a `ProgressiveEmitter` plus the serving contract the
/// `Resolver` builds on: a pay-as-you-go budget, an emission counter,
/// unified initialization diagnostics, and the robustness contract —
/// cancellable pulls (Pull), sticky failure containment (status), and
/// graceful teardown (Drain). `BudgetedEngine` implements that contract
/// once, so concrete engines only provide the unbudgeted stream.

namespace sper {

/// One timed step of an engine's initialization, e.g. token blocking on
/// shard 2. Phase names are the telemetry phase names ("token_blocking",
/// "block_purging", "block_filtering", "method_build", ...).
struct InitPhase {
  std::string name;
  /// Shard the phase ran on; 0 for an unsharded engine, and for
  /// shard-spanning phases such as "partition".
  std::size_t shard = 0;
  double seconds = 0.0;
};

/// Aggregate facts about an engine's initialization phase, unified across
/// plain and sharded engines (diagnostics / benches).
struct InitStats {
  /// Wall-clock seconds spent in the engine's constructor. The per-phase
  /// breakdown is in `phases`; init_seconds stays the authoritative total
  /// (phases can overlap under concurrent shard construction, so their
  /// sum may exceed it).
  double init_seconds = 0.0;
  /// |B| of the workflow collection, summed over shards (0 for the
  /// sort-based methods).
  std::size_t num_blocks = 0;
  /// ||B|| of the workflow collection, summed over shards (0 for the
  /// sort-based methods).
  std::uint64_t aggregate_cardinality = 0;
  /// Profiles per shard, in shard order; empty for an unsharded engine.
  std::vector<std::size_t> shard_sizes;
  /// Per-phase breakdown of init_seconds, in execution order per shard.
  std::vector<InitPhase> phases;
};

/// Outcome of one Engine::Pull.
enum class PullStatus {
  kOk,         // `out` holds the next comparison of the stream
  kExhausted,  // stream over (source drained, budget spent, or engine
               // drained) — terminal for this request AND the stream
  kCancelled,  // the token fired first; the stream is fully intact and the
               // next Pull (any token) continues bit-identically
  kError,      // the engine is poisoned — see status(); terminal, sticky
};

/// The engine interface: a ranked comparison stream (Next/name, inherited
/// from ProgressiveEmitter) plus budget accounting, init diagnostics, and
/// the robustness contract (cancellable pulls, sticky status, drain).
///
/// Engines are NOT thread-safe: one consumer drains Next()/Pull() at a
/// time (`ResolverSession` serializes concurrent requests on top of
/// this). Drain() must likewise be externally serialized against pulls —
/// the Resolver does so via its admission queue.
class Engine : public ProgressiveEmitter {
 public:
  /// Comparisons emitted so far.
  virtual std::uint64_t emitted() const = 0;

  /// True once the configured pay-as-you-go budget has been spent (never
  /// for budget 0, which means unlimited).
  virtual bool BudgetExhausted() const = 0;

  /// Initialization diagnostics.
  virtual const InitStats& init_stats() const = 0;

  /// Number of hash shards serving the stream (1 for a plain engine).
  virtual std::size_t num_shards() const = 0;

  /// The cancellable pull: like Next(), but gives up (kCancelled) when
  /// `token` fires at a batch boundary, and reports producer failures as
  /// kError instead of throwing. A null token never fires, making this a
  /// strict superset of Next().
  virtual PullStatus Pull(Comparison& out, const CancelToken& token) = 0;

  /// Why the engine is poisoned; ok() while healthy. Sticky: once a
  /// producer failure is contained here, every later Pull returns kError
  /// with this same status.
  virtual const Status& status() const = 0;

  /// Stops the stream for good: abandons buffered batches, shuts down
  /// and joins any producer tasks, and makes every later Pull return
  /// kExhausted. Idempotent; must not race Pull (see class comment).
  virtual void Drain() = 0;
};

/// Implements the budget and stats accounting of the Engine contract once:
/// Pull() charges the budget, counts emissions, and short-circuits the
/// poisoned and drained states; concrete engines only implement
/// PullUnbudgeted(). Derived constructors fill `stats_` and set `budget_`
/// (0 = unlimited).
class BudgetedEngine : public Engine {
 public:
  /// Emission phase: the next best comparison, honoring the budget.
  std::optional<Comparison> Next() final {
    Comparison out;
    return Pull(out, CancelToken()) == PullStatus::kOk
               ? std::optional<Comparison>(out)
               : std::nullopt;
  }

  PullStatus Pull(Comparison& out, const CancelToken& token) final {
    if (!status_.ok()) return PullStatus::kError;
    if (drained_ || BudgetExhausted()) return PullStatus::kExhausted;
    const PullStatus pulled = PullUnbudgeted(out, token);
    if (pulled == PullStatus::kOk) ++emitted_;
    return pulled;
  }

  std::uint64_t emitted() const final { return emitted_; }

  bool BudgetExhausted() const final {
    return budget_ != 0 && emitted_ >= budget_;
  }

  const InitStats& init_stats() const final { return stats_; }

  const Status& status() const final { return status_; }

 protected:
  /// The next comparison of the underlying stream, ignoring the budget.
  /// Must honor the Pull contract: check `token` at batch granularity,
  /// contain failures by setting `status_` and returning kError.
  virtual PullStatus PullUnbudgeted(Comparison& out,
                                    const CancelToken& token) = 0;

  /// Filled by the derived constructor (the initialization phase).
  InitStats stats_;
  /// Maximum emissions before the stream reads as exhausted; 0 =
  /// unlimited.
  std::uint64_t budget_ = 0;
  /// Sticky poison; set (once) by PullUnbudgeted on producer failure.
  Status status_ = Status::Ok();
  /// Set by Drain() implementations; flips the stream to kExhausted.
  bool drained_ = false;

 private:
  std::uint64_t emitted_ = 0;
};

}  // namespace sper

#endif  // SPER_ENGINE_ENGINE_H_
