// The parallel runtime (src/parallel/) carries the library's determinism
// contract onto multiple threads: static chunking, per-chunk accumulation,
// ordered merges. These tests pin pool lifecycle, exception propagation and
// the chunking invariants every parallel call site relies on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace sper {
namespace {

TEST(ThreadPoolTest, ConstructsAndJoinsWithoutWork) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ThreadPoolTest, ZeroThreadsIsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int t = 0; t < 100; ++t) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int t = 0; t < 10; ++t) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Submit([&completed] { completed.fetch_add(1); });
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([&completed] { completed.fetch_add(1); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool survives a throwing task: later batches still run.
  pool.Submit([&completed] { completed.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(completed.load(), 3);
}

TEST(StaticChunksTest, CoversRangeWithBalancedContiguousChunks) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (std::size_t threads : {1u, 2u, 4u, 8u, 13u}) {
      const std::vector<IndexRange> chunks = StaticChunks(n, threads);
      if (n == 0) {
        EXPECT_TRUE(chunks.empty());
        continue;
      }
      ASSERT_FALSE(chunks.empty());
      EXPECT_LE(chunks.size(), std::min(n, threads));
      std::size_t expected_begin = 0;
      std::size_t min_size = n, max_size = 0;
      for (const IndexRange& range : chunks) {
        EXPECT_EQ(range.begin, expected_begin);
        EXPECT_GT(range.size(), 0u);
        min_size = std::min(min_size, range.size());
        max_size = std::max(max_size, range.size());
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, n);
      EXPECT_LE(max_size - min_size, 1u);
    }
  }
}

TEST(StaticChunksTest, DependsOnlyOnSizeAndThreadCount) {
  const std::vector<IndexRange> a = StaticChunks(1234, 7);
  const std::vector<IndexRange> b = StaticChunks(1234, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].begin, b[c].begin);
    EXPECT_EQ(a[c].end, b[c].end);
  }
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    const std::size_t n = 997;  // prime: uneven chunks
    std::vector<int> visits(n, 0);
    ParallelFor(n, threads, [&](std::size_t i) { ++visits[i]; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
              static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i], 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, ResultMatchesSequentialComputation) {
  const std::size_t n = 500;
  std::vector<std::uint64_t> serial(n), parallel(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = i * i + 7;
  ParallelFor(n, 4, [&](std::size_t i) { parallel[i] = i * i + 7; });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForTest, PropagatesChunkException) {
  EXPECT_THROW(
      ParallelFor(100, 4,
                  [](std::size_t i) {
                    if (i == 42) throw std::runtime_error("bad index");
                  }),
      std::runtime_error);
}

TEST(ParallelForChunksTest, ChunkIndicesMatchStaticChunks) {
  const std::size_t n = 103;
  for (std::size_t threads : {1u, 3u, 8u}) {
    const std::vector<IndexRange> expected = StaticChunks(n, threads);
    std::vector<IndexRange> seen(expected.size());
    ParallelForChunks(n, threads, [&](std::size_t chunk, IndexRange range) {
      seen[chunk] = range;
    });
    for (std::size_t c = 0; c < expected.size(); ++c) {
      EXPECT_EQ(seen[c].begin, expected[c].begin);
      EXPECT_EQ(seen[c].end, expected[c].end);
    }
  }
}

TEST(AccumulateOrderedTest, MergeOrderIsThreadCountInvariant) {
  const std::size_t n = 1000;
  // Sequential reference: every index contributes (i, 3i) in order.
  std::vector<std::pair<std::size_t, std::size_t>> expected;
  for (std::size_t i = 0; i < n; ++i) expected.emplace_back(i, 3 * i);

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto merged = AccumulateOrdered(
        n, threads, [](std::size_t /*chunk*/, IndexRange range) {
          std::vector<std::pair<std::size_t, std::size_t>> part;
          for (std::size_t i = range.begin; i < range.end; ++i) {
            part.emplace_back(i, 3 * i);
          }
          return part;
        });
    EXPECT_EQ(merged, expected) << "threads " << threads;
  }
}

}  // namespace
}  // namespace sper
