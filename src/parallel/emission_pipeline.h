#ifndef SPER_PARALLEL_EMISSION_PIPELINE_H_
#define SPER_PARALLEL_EMISSION_PIPELINE_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <utility>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "obs/clock.h"
#include "obs/fault_injection.h"
#include "obs/metrics.h"
#include "parallel/cancel.h"
#include "parallel/spsc_ring.h"
#include "parallel/thread_pool.h"

/// \file emission_pipeline.h
/// The emission pipeline: overlaps refill-batch *production* with
/// comparison *consumption* while preserving the exact serial emission
/// order. A single producer task on a ThreadPool runs the method's refill
/// procedure strictly in cursor order, up to `lookahead` batches ahead of
/// the consumer; the consumer pops completed batches from a bounded SPSC
/// ring (spsc_ring.h) instead of computing them inline.
///
/// Why a *single in-order* producer is enough: in PPS (paper Alg. 6) the
/// only dependency between refills is the checkedEntities array written by
/// consecutive ProcessProfile calls, and in PBS (Alg. 4) refills are
/// independent per scheduled block — either way, producing batches one at
/// a time in cursor order yields byte-for-byte the batches the serial path
/// would compute, so the consumer-side stream is bit-identical at every
/// lookahead. Parallelism across *streams* (one producer per shard) is
/// what keeps multiple cores busy; see engine/sharded_engine.h.

namespace sper {

/// Runtime-health metric sinks of one EmissionPipeline. All pointers are
/// optional (nullptr = not recorded); the owner wires them to its
/// registry and must keep them alive for the pipeline's lifetime.
struct EmissionPipelineMetrics {
  /// Batches committed by the producer.
  obs::Counter* batches = nullptr;
  /// Producer AcquireSlot calls that found the ring full (back-pressure:
  /// consumption is the bottleneck).
  obs::Counter* producer_stalls = nullptr;
  /// Consumer Front calls that found the ring empty (starvation:
  /// production is the bottleneck).
  obs::Counter* consumer_waits = nullptr;
  /// Wall nanoseconds per refill-batch production.
  obs::Histogram* refill_ns = nullptr;
  /// Committed-batch count observed after each commit (0..lookahead).
  obs::Histogram* ring_occupancy = nullptr;
};

/// How a pipeline's producer died, surfaced to the consumer instead of
/// rethrown across it: the zero-based cursor of the refill batch that was
/// being produced, and the captured exception. `exception == nullptr`
/// means the producer finished (or is still running) cleanly.
struct EmissionPipelineError {
  std::size_t batch_index = 0;
  std::exception_ptr exception;
};

/// Runs `produce` on a pool worker, `lookahead` batches ahead of the
/// consumer. Batch is any reusable buffer type (the engines use
/// ComparisonList); `produce` must fill the passed batch and return false
/// once the stream is exhausted.
template <typename Batch>
class EmissionPipeline {
 public:
  using Produce = std::function<bool(Batch&)>;

  /// `lookahead` bounds how many completed batches may be queued (at
  /// least 1). Production does not start until Start(). `metrics`, when
  /// given, must outlive the pipeline; it only adds relaxed counter
  /// updates on the producer path, never extra synchronization, so the
  /// emitted stream is identical with or without it. `fault_site`, when
  /// non-empty, names the fault-injection seam fired before each refill
  /// production (fault builds only; see obs/fault_injection.h).
  EmissionPipeline(std::size_t lookahead, Produce produce,
                   const EmissionPipelineMetrics* metrics = nullptr,
                   std::string fault_site = {})
      : ring_(lookahead),
        produce_(std::move(produce)),
        metrics_(metrics),
        fault_site_(std::move(fault_site)) {}

  /// Submits the producer loop. The pool must have a worker available for
  /// the pipeline's whole lifetime: the task runs until the stream is
  /// exhausted or the pipeline shuts down (callers size their pool with
  /// one worker per live pipeline — see ShardedEngine).
  void Start(ThreadPool& pool) {
    started_ = true;
    pool.Submit([this] { ProducerLoop(); });
  }

  /// Closes the ring and blocks until the producer task exited. Safe to
  /// call at any point of the stream (budget exhaustion abandons it
  /// mid-flight); idempotent.
  void Shutdown() {
    if (!started_) return;
    ring_.Close();
    MutexLock lock(done_mutex_);
    while (!done_) done_cv_.Wait(lock);
  }

  ~EmissionPipeline() { Shutdown(); }

  EmissionPipeline(const EmissionPipeline&) = delete;
  EmissionPipeline& operator=(const EmissionPipeline&) = delete;

  /// Consumer: the oldest completed batch, blocking until the producer
  /// commits one. nullptr once the stream is over — exhausted and drained,
  /// shut down, or the producer died (check error() to tell the last case
  /// apart; nothing is ever rethrown across this boundary).
  Batch* Front() {
    bool waited = false;
    Batch* front = ring_.Front(&waited);
    if (waited && metrics_ != nullptr &&
        metrics_->consumer_waits != nullptr) {
      metrics_->consumer_waits->Add();
    }
    return front;
  }

  /// Consumer: like Front(), but gives up when `token` fires before a
  /// batch is committed: returns nullptr with *expired = true, stream
  /// untouched — the producer keeps running and a later Front()/
  /// FrontUntil() resumes exactly where this one left off.
  Batch* FrontUntil(const CancelToken& token, bool* expired) {
    bool waited = false;
    Batch* front = ring_.FrontUntil(token, expired, &waited);
    if (waited && metrics_ != nullptr &&
        metrics_->consumer_waits != nullptr) {
      metrics_->consumer_waits->Add();
    }
    return front;
  }

  /// The error that killed the producer, if any: meaningful once Front()
  /// returned an end-of-stream nullptr (the producer publishes it before
  /// finishing the ring, so the consumer can never see the nullptr first).
  /// `.exception == nullptr` means the stream ended cleanly.
  EmissionPipelineError error() const {
    MutexLock lock(done_mutex_);
    return error_;
  }

  /// Consumer: recycles the drained Front() batch for the producer.
  void PopFront() { ring_.PopFront(); }

 private:
  void ProducerLoop() {
    std::size_t batch_index = 0;
    try {
      for (;;) {
        bool stalled = false;
        Batch* slot = ring_.AcquireSlot(&stalled);
        if (stalled && metrics_ != nullptr &&
            metrics_->producer_stalls != nullptr) {
          metrics_->producer_stalls->Add();
        }
        if (slot == nullptr) break;  // consumer closed the stream
        SPER_FAULT_HIT(fault_site_);
        if (metrics_ == nullptr) {
          if (!produce_(*slot)) break;  // stream exhausted
        } else {
          const obs::Stopwatch watch;
          const bool more = produce_(*slot);
          if (metrics_->refill_ns != nullptr) {
            metrics_->refill_ns->Record(watch.ElapsedNanos());
          }
          if (!more) break;  // stream exhausted
        }
        ring_.CommitSlot();
        ++batch_index;
        if (metrics_ != nullptr) {
          if (metrics_->batches != nullptr) metrics_->batches->Add();
          if (metrics_->ring_occupancy != nullptr) {
            metrics_->ring_occupancy->Record(ring_.size());
          }
        }
      }
    } catch (...) {
      // Publish before FinishProduction: once the consumer observes the
      // end-of-stream nullptr, error() is guaranteed to be populated.
      MutexLock lock(done_mutex_);
      error_ = {batch_index, std::current_exception()};
    }
    ring_.FinishProduction();
    {
      // Notify while still holding the mutex: the moment a Shutdown()
      // waiter can observe done_ the pipeline may be destroyed, so the
      // notify must not touch done_cv_ after the unlock.
      MutexLock lock(done_mutex_);
      done_ = true;
      done_cv_.NotifyAll();
    }
  }

  SpscSlotRing<Batch> ring_;
  Produce produce_;
  const EmissionPipelineMetrics* metrics_ = nullptr;
  std::string fault_site_;
  /// Consumer-thread only (Start/Shutdown/destructor are all consumer
  /// side), so unguarded by design.
  bool started_ = false;

  mutable Mutex done_mutex_;
  CondVar done_cv_;
  bool done_ SPER_GUARDED_BY(done_mutex_) = false;
  EmissionPipelineError error_ SPER_GUARDED_BY(done_mutex_);
};

}  // namespace sper

#endif  // SPER_PARALLEL_EMISSION_PIPELINE_H_
