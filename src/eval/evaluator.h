#ifndef SPER_EVAL_EVALUATOR_H_
#define SPER_EVAL_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ground_truth.h"
#include "matching/match_function.h"
#include "progressive/emitter.h"

/// \file evaluator.h
/// The paper's evaluation protocol (Sec. 7, "Metrics"):
///
/// - emissions are normalized as ec* = ec / |D_P|, so the ideal method
///   reaches recall 1 exactly at ec* = 1;
/// - *recall progressiveness* is the recall curve over ec*;
/// - AUC@ec* is the (discrete) area under that curve, and AUC*@ec* its
///   value normalized by the ideal method's area;
/// - timing separates initialization time (everything up to the first
///   emission) from comparison time (emission + match function).

namespace sper {

/// One sampled point of a recall-progressiveness curve.
struct CurvePoint {
  double ecstar = 0.0;
  double recall = 0.0;
};

/// Evaluation protocol options.
struct EvalOptions {
  /// Stop after ecstar_max * |D_P| emitted comparisons (the paper plots
  /// up to ec* = 30).
  double ecstar_max = 30.0;
  /// Curve sampling density: points per unit of ec*.
  std::size_t curve_points_per_unit = 10;
  /// Normalized-AUC checkpoints (the paper reports 1, 5, 10, 20).
  std::vector<double> auc_at = {1.0, 5.0, 10.0, 20.0};
};

/// Everything measured in one progressive run.
struct RunResult {
  std::string method;
  /// Recall progressiveness, sampled on the ec* grid.
  std::vector<CurvePoint> curve;
  /// AUC*_m@ec* for every EvalOptions::auc_at checkpoint, in order.
  std::vector<double> auc_norm;
  /// Distinct matches found / |D_P| at the end of the run.
  double final_recall = 0.0;
  /// Comparisons emitted (including any repeats).
  std::uint64_t emissions = 0;
  /// Distinct ground-truth matches found.
  std::size_t matches_found = 0;
  /// Initialization phase seconds (emitter construction).
  double init_seconds = 0.0;
  /// Total seconds spent inside Next().
  double emission_seconds = 0.0;
  /// Total seconds spent inside the match function (0 when none given).
  double match_seconds = 0.0;
  /// Recall at each point in time (seconds since init start), sampled with
  /// the curve; only meaningful when a match function is timed.
  std::vector<std::pair<double, double>> time_recall;
};

/// Runs emitters against a ground truth under the paper's protocol.
class ProgressiveEvaluator {
 public:
  ProgressiveEvaluator(const GroundTruth& truth, EvalOptions options = {});

  /// Runs one method. `factory` builds the emitter (timed as the
  /// initialization phase); `match` is invoked per emission when provided
  /// (timed as match time, result ignored per the paper's footnote 10).
  RunResult Run(
      const std::function<std::unique_ptr<ProgressiveEmitter>()>& factory,
      const MatchFunction* match = nullptr) const;

  const EvalOptions& options() const { return options_; }

 private:
  const GroundTruth& truth_;
  EvalOptions options_;
};

/// Mean of the AUC* columns across several runs (Figs. 10 and 12 report
/// the mean AUC*_m over all datasets). All runs must share auc_at.
std::vector<double> MeanAucAcrossRuns(const std::vector<RunResult>& runs);

}  // namespace sper

#endif  // SPER_EVAL_EVALUATOR_H_
