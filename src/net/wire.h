#ifndef SPER_NET_WIRE_H_
#define SPER_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/comparison.h"
#include "core/status.h"
#include "engine/resolver.h"

/// \file wire.h
/// The versioned binary framing of the serving protocol: how a
/// ResolveRequest / ResolveResult crosses a socket (net/server.h and
/// net/client.h speak exactly this; docs/wire_protocol.md is the
/// normative spec). Layout of one frame:
///
///   u32 payload_len (little-endian) | payload
///   payload := u8 version (= kWireVersion) | u8 frame type | body
///
/// Every multi-byte integer is explicit little-endian — encoded and
/// decoded byte by byte, never by memcpy of a host integer — so the
/// format is identical on every architecture. Doubles travel as the
/// little-endian bytes of their IEEE-754 bit pattern, so a weight that
/// crossed the wire compares bit-identical to the in-process stream (the
/// digest checks in tests/net_test.cc and bench_server_loopback rely on
/// this, including NaN payloads).
///
/// Decoding is exhaustive-validating: unknown version/type/enum bytes,
/// truncated bodies, length fields pointing past the payload, and
/// trailing bytes after a complete body are all InvalidArgument errors —
/// a frame either round-trips exactly or is rejected, never partially
/// applied. DecodeResolveRequest additionally runs the shared
/// ValidateResolveRequest (engine/resolver.h), so a request that decodes
/// OK is by construction servable.
///
/// What does not cross the wire: ResolveRequest::cancel (a process-local
/// CancelToken). Remote cancellation is expressed as deadline_ms — the
/// deadline-cut path is fully wire-visible (ResolveOutcome
/// kDeadlineExpired / kCancelled travel in the outcome byte).

namespace sper {
namespace net {

/// Protocol version carried in every frame. Bump on any layout change;
/// decoders reject frames from other versions.
inline constexpr std::uint8_t kWireVersion = 1;

/// Upper bound on one frame's payload. Chosen so a maximal response —
/// ResolveRequest::kMaxBatch comparisons at 16 bytes each plus the fixed
/// result header and a status message — always fits: 16 MiB of
/// comparisons < 32 MiB. A decoder seeing a larger length declares the
/// stream corrupt (it is a framing error, not a big message).
inline constexpr std::uint32_t kMaxFramePayload = 32u << 20;

/// Frame types (the second payload byte).
enum class FrameType : std::uint8_t {
  kResolveRequest = 1,  // client -> server: one ResolveRequest
  kResolveResult = 2,   // server -> client: one ResolveResult
  kMetricsRequest = 3,  // client -> server: admin metrics scrape, no body
  kMetricsResult = 4,   // server -> client: obs::Registry stable JSON
};

// ---------------------------------------------------------------------------
// Little-endian primitives (appended to / read from std::string buffers).
// ---------------------------------------------------------------------------

void PutU8(std::string& out, std::uint8_t v);
void PutU32(std::string& out, std::uint32_t v);
void PutU64(std::string& out, std::uint64_t v);
/// The IEEE-754 bit pattern of `v`, little-endian.
void PutF64(std::string& out, double v);

/// Cursor-based reader over one payload. Every Read* returns false on
/// underrun and leaves the cursor unspecified; callers bail out on first
/// failure.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool ReadU8(std::uint8_t& v);
  bool ReadU32(std::uint32_t& v);
  bool ReadU64(std::uint64_t& v);
  bool ReadF64(double& v);
  /// Reads `n` raw bytes into `v`.
  bool ReadBytes(std::size_t n, std::string& v);

  /// Bytes not yet consumed (0 after a complete, exact decode).
  std::size_t remaining() const { return data_.size() - cursor_; }

 private:
  std::string_view data_;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Frame encoding. Each returns one complete frame: length prefix included.
// ---------------------------------------------------------------------------

/// Encodes `request`. The cancel token is not transported (see the file
/// comment); every other field crosses exactly.
std::string EncodeResolveRequestFrame(const ResolveRequest& request);

/// Encodes `result`: ticket, outcome, stream/budget flags, status
/// (code + message), retry_after_ms and the comparison slice.
std::string EncodeResolveResultFrame(const ResolveResult& result);

std::string EncodeMetricsRequestFrame();
std::string EncodeMetricsResultFrame(std::string_view snapshot_json);

// ---------------------------------------------------------------------------
// Frame decoding. All decoders take the *payload* (the bytes after the
// u32 length prefix — net/socket.h's ReadFrame strips it).
// ---------------------------------------------------------------------------

/// Checks version and returns the frame type. InvalidArgument on a short
/// payload, a foreign version or an unknown type — all framing-level
/// errors after which the byte stream cannot be trusted (the server
/// closes the connection; see net/server.h).
Result<FrameType> DecodeFrameHeader(std::string_view payload);

/// Decodes a kResolveRequest payload and runs ValidateResolveRequest on
/// it, so every successfully decoded request is servable.
Result<ResolveRequest> DecodeResolveRequest(std::string_view payload);

/// Decodes a kResolveResult payload, rejecting unknown outcome / status
/// code bytes.
Result<ResolveResult> DecodeResolveResult(std::string_view payload);

/// Decodes a kMetricsResult payload into the carried JSON snapshot.
Result<std::string> DecodeMetricsResult(std::string_view payload);

// ---------------------------------------------------------------------------
// Stream digest.
// ---------------------------------------------------------------------------

/// FNV-1a fold over emitted comparisons — the same fold (i, then j, then
/// the weight's bit pattern) as the digest-checked serving benches
/// (bench/bench_util.h DrainResult), so an over-the-wire stream can be
/// digest-compared against an in-process drain. Two streams with equal
/// (value, count) are bit-identical with overwhelming probability.
struct StreamDigest {
  std::uint64_t value = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t count = 0;

  void Fold(const Comparison& c);

  bool operator==(const StreamDigest& other) const {
    return value == other.value && count == other.count;
  }
};

}  // namespace net
}  // namespace sper

#endif  // SPER_NET_WIRE_H_
