#ifndef SPER_IO_CSV_H_
#define SPER_IO_CSV_H_

#include <istream>
#include <string>
#include <string_view>
#include <vector>

/// \file csv.h
/// Minimal RFC-4180-style CSV: fields containing commas, quotes or
/// newlines are double-quoted with quote doubling. Enough to round-trip
/// arbitrary profile values.

namespace sper {

/// Escapes one field for CSV output.
std::string CsvEscape(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string CsvJoin(const std::vector<std::string>& fields);

/// Splits one CSV line into fields, honoring quoting. Malformed trailing
/// quotes are tolerated (the remainder is taken literally).
std::vector<std::string> CsvSplit(std::string_view line);

/// Reads one *logical* CSV record from the stream into `record`: physical
/// lines are accumulated (rejoined with '\n') while a quoted field is
/// still open, so fields containing embedded newlines — which CsvEscape
/// quotes on output — round-trip. A trailing '\r' outside quotes (CRLF
/// input) is stripped; an unterminated quote at EOF is tolerated (the
/// remainder is taken literally, matching CsvSplit). Returns false only
/// at end of stream with nothing read. Pass the result to CsvSplit.
bool CsvReadRecord(std::istream& in, std::string* record);

}  // namespace sper

#endif  // SPER_IO_CSV_H_
