// Unit tests for src/matching: Levenshtein, Jaccard and the MatchFunction
// implementations of Sec. 7.3.

#include <gtest/gtest.h>

#include "matching/jaccard.h"
#include "matching/levenshtein.h"
#include "matching/match_function.h"

namespace sper {
namespace {

// ------------------------------------------------------------ Levenshtein

TEST(LevenshteinTest, IdenticalStringsHaveZeroDistance) {
  EXPECT_EQ(LevenshteinDistance("tailor", "tailor"), 0u);
}

TEST(LevenshteinTest, ClassicExamples) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("carl", "karl"), 1u);
}

TEST(LevenshteinTest, EmptyStringCostsFullLength) {
  EXPECT_EQ(LevenshteinDistance("", "abcde"), 5u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
}

TEST(LevenshteinTest, IsSymmetric) {
  EXPECT_EQ(LevenshteinDistance("white", "whyte"),
            LevenshteinDistance("whyte", "white"));
}

TEST(LevenshteinTest, SimilarityNormalizesByLongerString) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("carl", "karl"), 0.75);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("ab", "cdef"), 0.0);
}

// ---------------------------------------------------------------- Jaccard

TEST(JaccardTest, DisjointSetsScoreZero) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"c", "d"}), 0.0);
}

TEST(JaccardTest, IdenticalSetsScoreOne) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
}

TEST(JaccardTest, PartialOverlap) {
  // |{b}| / |{a, b, c}|
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
}

TEST(JaccardTest, EmptySets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
}

// --------------------------------------------------------- MatchFunctions

ProfileStore TwoProfileStore() {
  std::vector<Profile> ps(3);
  ps[0].AddAttribute("name", "carl white");
  ps[0].AddAttribute("job", "tailor");
  ps[1].AddAttribute("name", "karl white");
  ps[1].AddAttribute("job", "tailor");
  ps[2].AddAttribute("name", "ellen smith");
  ps[2].AddAttribute("job", "teacher");
  return ProfileStore::MakeDirty(std::move(ps));
}

TEST(MatchFunctionTest, EditDistanceRanksNearDuplicateHigher) {
  ProfileStore store = TwoProfileStore();
  EditDistanceMatch match(store);
  EXPECT_GT(match.Similarity(0, 1), match.Similarity(0, 2));
  EXPECT_EQ(match.name(), "edit-distance");
}

TEST(MatchFunctionTest, JaccardRanksNearDuplicateHigher) {
  ProfileStore store = TwoProfileStore();
  JaccardMatch match(store);
  EXPECT_GT(match.Similarity(0, 1), match.Similarity(0, 2));
  // {karl, white, tailor} vs {carl, white, tailor}: 2 shared of 4.
  EXPECT_DOUBLE_EQ(match.Similarity(0, 1), 0.5);
}

TEST(MatchFunctionTest, OracleFollowsGroundTruth) {
  ProfileStore store = TwoProfileStore();
  GroundTruth truth;
  truth.AddMatch(0, 1);
  OracleMatch match(truth);
  EXPECT_DOUBLE_EQ(match.Similarity(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(match.Similarity(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(match.Similarity(0, 2), 0.0);
}

TEST(MatchFunctionTest, SimilarityIsSymmetric) {
  ProfileStore store = TwoProfileStore();
  EditDistanceMatch ed(store);
  JaccardMatch js(store);
  EXPECT_DOUBLE_EQ(ed.Similarity(0, 2), ed.Similarity(2, 0));
  EXPECT_DOUBLE_EQ(js.Similarity(0, 2), js.Similarity(2, 0));
}

}  // namespace
}  // namespace sper
