#ifndef SPER_PARALLEL_CANCEL_H_
#define SPER_PARALLEL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "obs/clock.h"

/// \file cancel.h
/// Cooperative cancellation for the serving stack: a `CancelToken` is a
/// cheap shared handle that long-running pulls (Resolver::Serve draw
/// loops, emission-pipeline waits, k-way-merge refills) poll at batch
/// granularity. Cancellation is *advisory* — a fired token never tears
/// state down; it makes the current pull return "cancelled" with every
/// buffer intact, so the next pull (the next request's) continues the
/// stream bit-identically.
///
/// Two ways a token fires:
///   - explicitly, through the owning CancelSource's Cancel();
///   - by deadline, when the token was derived with WithDeadline() and
///     the wall clock passes it (the per-request `deadline_ms` path).
/// Deadline expiry is latched on first observation, so later checks cost
/// one relaxed load instead of a clock read.

namespace sper {

/// How often blocking waits that honor a deadline-less token re-check it
/// for an explicit Cancel() (there is no wakeup to wait for in that case,
/// only a poll).
inline constexpr std::chrono::milliseconds kCancelPollInterval{1};

/// Why a token fired. kNone while the token is live.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kCancelled,  // explicit CancelSource::Cancel()
  kDeadline,   // the deadline passed
};

class CancelSource;

/// Shared cancellation handle. Copyable and cheap (one shared_ptr); a
/// default-constructed token is *null*: it never fires and costs one
/// pointer test per check. Tokens derived via WithDeadline() chain to
/// their parent: either firing cancels the child.
class CancelToken {
 public:
  // The library's one monotonic clock (obs/clock.h): deadlines and the
  // waits that honor them must read the same time source as every other
  // timing site — tools/lint_determinism.py bans raw std::chrono clocks
  // outside that header.
  using Clock = obs::Stopwatch::Clock;

  CancelToken() = default;

  /// False for a null token — checks are free in that case.
  bool valid() const { return state_ != nullptr; }

  /// True once the source cancelled, the deadline passed, or a chained
  /// parent fired. Reads the clock only until expiry latches.
  bool cancelled() const {
    const State* s = state_.get();
    while (s != nullptr) {
      if (s->reason.load(std::memory_order_relaxed) != CancelReason::kNone) {
        return true;
      }
      if (s->has_deadline && Clock::now() >= s->deadline) {
        CancelReason expected = CancelReason::kNone;
        s->reason.compare_exchange_strong(expected, CancelReason::kDeadline,
                                          std::memory_order_relaxed);
        return true;
      }
      s = s->parent.get();
    }
    return false;
  }

  /// Why the token fired; kNone while live (or for a null token).
  CancelReason reason() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      const CancelReason r = s->reason.load(std::memory_order_relaxed);
      if (r != CancelReason::kNone) return r;
    }
    return CancelReason::kNone;
  }

  /// True when this token (or a chained parent) carries a deadline.
  bool has_deadline() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->has_deadline) return true;
    }
    return false;
  }

  /// The earliest deadline along the parent chain. Only meaningful when
  /// has_deadline(); blocking waits use it for wait_until.
  Clock::time_point deadline() const {
    Clock::time_point earliest = Clock::time_point::max();
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->has_deadline && s->deadline < earliest) earliest = s->deadline;
    }
    return earliest;
  }

  /// A child token that additionally fires `timeout` from now. Works on a
  /// null token too (the result is a pure deadline token). The parent
  /// keeps its own state: cancelling the parent fires the child, not the
  /// other way round.
  CancelToken WithDeadline(std::chrono::nanoseconds timeout) const {
    auto state = std::make_shared<State>();
    state->has_deadline = true;
    state->deadline = Clock::now() + timeout;
    state->parent = state_;
    CancelToken child;
    child.state_ = std::move(state);
    return child;
  }

 private:
  friend class CancelSource;

  struct State {
    mutable std::atomic<CancelReason> reason{CancelReason::kNone};
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::shared_ptr<State> parent;
  };

  std::shared_ptr<State> state_;
};

/// Owner side of a cancellation relationship: hands out tokens and fires
/// them. Copyable (copies share the same state).
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<CancelToken::State>()) {}

  /// Fires every token handed out by this source. Idempotent; a deadline
  /// that already latched keeps its kDeadline reason.
  void Cancel() {
    CancelReason expected = CancelReason::kNone;
    state_->reason.compare_exchange_strong(expected, CancelReason::kCancelled,
                                           std::memory_order_relaxed);
  }

  /// A token observing this source.
  CancelToken token() const {
    CancelToken t;
    t.state_ = state_;
    return t;
  }

 private:
  std::shared_ptr<CancelToken::State> state_;
};

}  // namespace sper

#endif  // SPER_PARALLEL_CANCEL_H_
