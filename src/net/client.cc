#include "net/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "net/wire.h"

namespace sper {
namespace net {

Result<Client> Client::Connect(const std::string& host, std::uint16_t port) {
  Result<Socket> socket = ConnectTcp(host, port);
  if (!socket.ok()) return socket.status();
  return Client(std::move(socket).value());
}

Result<std::string> Client::RoundTrip(const std::string& frame) {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  SPER_RETURN_IF_ERROR(WriteFrame(socket_, frame));
  std::string payload;
  Status read_error = Status::Ok();
  const ReadStatus read = ReadFrame(socket_, &payload, &read_error);
  if (read == ReadStatus::kEof) {
    return Status::IoError("server closed the connection mid-exchange");
  }
  if (read == ReadStatus::kError) return read_error;
  return payload;
}

Result<ResolveResult> Client::Resolve(const ResolveRequest& request) {
  SPER_RETURN_IF_ERROR(ValidateResolveRequest(request));
  Result<std::string> payload =
      RoundTrip(EncodeResolveRequestFrame(request));
  if (!payload.ok()) return payload.status();
  return DecodeResolveResult(payload.value());
}

Result<ResolveResult> Client::ResolveWithRetry(const ResolveRequest& request,
                                               std::size_t max_retries) {
  Result<ResolveResult> result = Resolve(request);
  for (std::size_t retry = 0; retry < max_retries; ++retry) {
    if (!result.ok() || result.value().outcome != ResolveOutcome::kShed) {
      return result;
    }
    const std::uint64_t backoff_ms = result.value().retry_after_ms;
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    result = Resolve(request);
  }
  return result;
}

Result<std::string> Client::FetchMetricsJson() {
  Result<std::string> payload = RoundTrip(EncodeMetricsRequestFrame());
  if (!payload.ok()) return payload.status();
  return DecodeMetricsResult(payload.value());
}

}  // namespace net
}  // namespace sper
