#include <string>
#include <vector>

#include "datagen/corruption.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/generator_util.h"
#include "datagen/rng.h"
#include "datagen/soundex.h"

/// Synthetic `census` (Table 2: Dirty ER, 841 profiles, 5 attributes,
/// 344 matches, 4.65 name-value pairs per profile).
///
/// Models US-census-style person records with *very discriminative short
/// values*: surname + initial + zipcode nearly identify a person, and
/// duplicates differ by character-level typos only. This is the regime
/// where the paper found schema-based PSN competitive (Sec. 7.1) because
/// its hand-crafted key — Soundex(surname) + initials + zipcode, footnote
/// 6 — is tailor-made for this noise.

namespace sper {

namespace {

struct CensusPerson {
  std::string surname;
  std::string initial;
  std::string zipcode;
  std::string age;
  std::string state;
};

CensusPerson MakePerson(Rng& rng, const std::vector<std::string>& surnames) {
  CensusPerson person;
  person.surname = rng.Pick(surnames);
  person.initial = std::string(1, static_cast<char>('a' + rng.UniformInt(0, 25)));
  person.zipcode = ZeroPad(rng.UniformInt(10000, 99999), 5);
  person.age = std::to_string(rng.UniformInt(18, 95));
  person.state = rng.Pick(States());
  return person;
}

Profile MakeRecord(Rng& rng, const CensusPerson& person, bool corrupted) {
  CensusPerson record = person;
  if (corrupted) {
    record.surname = MaybeTypo(rng, record.surname, 0.25);
    if (rng.Bernoulli(0.15)) {
      // One digit of the zipcode transcribed wrong.
      const std::size_t pos = rng.UniformInt(0, record.zipcode.size() - 1);
      record.zipcode[pos] = static_cast<char>('0' + rng.UniformInt(0, 9));
    }
    if (rng.Bernoulli(0.3)) {
      record.age = std::to_string(
          std::stoul(record.age) + (rng.Bernoulli(0.5) ? 1 : -1));
    }
  }

  Profile profile;
  profile.AddAttribute("surname", record.surname);
  // Each secondary attribute is independently missing (incomplete data),
  // tuned so the mean profile size lands at Table 2's 4.65.
  if (!rng.Bernoulli(0.0875)) profile.AddAttribute("initial", record.initial);
  if (!rng.Bernoulli(0.0875)) profile.AddAttribute("zipcode", record.zipcode);
  if (!rng.Bernoulli(0.0875)) profile.AddAttribute("age", record.age);
  if (!rng.Bernoulli(0.0875)) profile.AddAttribute("state", record.state);
  return profile;
}

}  // namespace

DatasetBundle GenerateCensus(const DatagenOptions& options) {
  Rng rng(options.seed * 1000003 + 1);

  // Surname pool: 100 common + 400 generated, so surnames are rare enough
  // to be discriminative across ~841 profiles.
  std::vector<std::string> surnames = Surnames();
  for (std::string& w : SyllablePool(rng, 400)) {
    surnames.push_back(std::move(w));
  }

  // 260 clusters of 2 + 28 of 3 = 344 matching pairs over 604 duplicated
  // profiles; 237 singletons complete the 841.
  ClusterPlan plan;
  plan.clusters_of_size = {{2, 260}, {3, 28}};
  plan.singletons = 237;
  plan = plan.Scaled(options.scale);

  std::vector<std::vector<Profile>> clusters;
  for (const auto& [size, count] : plan.clusters_of_size) {
    for (std::size_t c = 0; c < count; ++c) {
      const CensusPerson person = MakePerson(rng, surnames);
      std::vector<Profile> cluster;
      cluster.push_back(MakeRecord(rng, person, /*corrupted=*/false));
      for (std::size_t m = 1; m < size; ++m) {
        cluster.push_back(MakeRecord(rng, person, /*corrupted=*/true));
      }
      clusters.push_back(std::move(cluster));
    }
  }
  std::vector<Profile> singletons;
  for (std::size_t s = 0; s < plan.singletons; ++s) {
    singletons.push_back(
        MakeRecord(rng, MakePerson(rng, surnames), /*corrupted=*/false));
  }

  DirtyAssembly assembly =
      AssembleDirty(rng, std::move(clusters), std::move(singletons));
  return DatasetBundle{
      "census",
      std::move(assembly.store),
      std::move(assembly.truth),
      // The literature key (footnote 6): Soundex surname + initial + zip.
      [](const Profile& p) {
        const std::string surname(p.ValueOf("surname"));
        if (surname.empty()) return std::string();
        std::string key = Soundex(surname);
        key += p.ValueOf("initial");
        key += p.ValueOf("zipcode");
        return key;
      },
      "synthetic US-census person records; char-level typos, "
      "discriminative surname/zip keys"};
}

}  // namespace sper
