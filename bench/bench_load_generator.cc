// Tail-latency load generator for the QoS admission layer: an open-loop
// multi-client mix drives one shared resolver through three serving
// configurations and reports per-class latency percentiles and goodput.
//
//   fifo       no QoS — every request goes straight to the resolver's
//              ticketed FIFO admission (the pre-QoS serving path);
//   qos_noshed QosAdmissionController with shedding and eviction OFF:
//              rate limiting disabled, queue unbounded. Priority lanes
//              and WRR still schedule, but overload piles up;
//   qos_shed   shedding ON: per-client rate limit at the calibrated
//              sustainable share, bounded queue depth, doomed-request
//              eviction. Over-capacity arrivals fail fast with a
//              retry_after_ms hint instead of queueing.
//
// Open loop: each client's request k has a *scheduled* arrival time
// (start + k / rate); a dispatcher thread launches one worker per
// arrival at that instant regardless of whether earlier requests have
// finished, and latency is measured from the scheduled arrival to
// completion — backlog shows up as latency, never as a slower offered
// rate (no coordinated omission).
//
// The mix is 4 clients: two kInteractive (carrying --deadline-ms each),
// one kBatch and one kBestEffort (no deadline). The offered rate is
// --overload times the capacity measured by a calibration drain, so the
// mix is overloaded by construction.
//
// Every configuration is digest-checked: its admitted slices,
// concatenated in resolver-ticket order, must be bit-identical to a
// prefix of one fresh un-batched drain (FNV-1a, bench_util.h). Sheds
// and evictions change which requests are served, never the served
// stream. The bench exits 1 on digest mismatch — and exits 1 if
// qos_shed does not beat qos_noshed on interactive p99, which is the
// claim BENCH_loadgen.json exists to document.
//
//   bench_load_generator [--scale=S] [--dataset=NAME] [--method=M]
//                        [--requests=R] [--batch=B] [--overload=F]
//                        [--deadline-ms=MS] [--depth=N] [--json=PATH]
//
// --json emits one record per configuration (schema: bench/BENCH.md)
// with per-class p50/p99/goodput extras.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/table.h"
#include "obs/clock.h"
#include "serving/qos.h"

namespace {

using namespace sper;
using sper::bench::DrainResult;

/// Nearest-rank percentile (q in [0, 1]).
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

std::uint64_t NowNs() { return obs::MonotonicClock::Default()->NowNanos(); }

struct LoadArgs {
  double scale = 4.0;
  std::string dataset = "cora";
  std::string method = "pps";
  std::uint64_t requests = 30;    // per client
  std::uint64_t batch = 2048;     // comparisons per request
  double overload = 4.0;          // offered rate / calibrated capacity
  std::uint64_t deadline_ms = 50;  // interactive clients only
  std::size_t depth = 8;          // qos_shed max_queue_depth
  std::string json_path;
};

/// One client of the mix: a priority class, an offered rate share, and
/// whether its requests carry the interactive deadline.
struct ClientSpec {
  ClientId id;
  Priority priority;
  bool deadline;
};

/// One issued request's record, written by its worker thread into a
/// pre-sized slot (no locking; readers join first).
struct RequestRecord {
  Priority priority = Priority::kInteractive;
  ResolveResult slice;
  double latency_ms = 0.0;  // scheduled arrival -> completion
  bool issued = false;
};

/// How a configuration serves one request. fifo goes straight to the
/// resolver; the qos paths go through the controller.
struct ServePath {
  Resolver* resolver = nullptr;
  serving::QosAdmissionController* qos = nullptr;

  ResolveResult Serve(const ResolveRequest& request) const {
    return qos != nullptr ? qos->Resolve(request) : resolver->Serve(request);
  }
};

struct MixResult {
  std::vector<RequestRecord> records;
  double wall_ms = 0.0;
};

/// Runs the open-loop mix: one dispatcher thread per client launches one
/// worker per scheduled arrival; workers serve and record independently.
MixResult RunMix(const ServePath& path, const std::vector<ClientSpec>& clients,
                 const LoadArgs& args, double per_client_rate) {
  MixResult mix;
  mix.records.resize(clients.size() * args.requests);
  const std::uint64_t interval_ns =
      static_cast<std::uint64_t>(1e9 / per_client_rate);
  const std::uint64_t start_ns = NowNs();

  std::vector<std::thread> dispatchers;
  dispatchers.reserve(clients.size());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    dispatchers.emplace_back([&, c] {
      const ClientSpec& spec = clients[c];
      std::vector<std::thread> workers;
      workers.reserve(args.requests);
      for (std::uint64_t k = 0; k < args.requests; ++k) {
        const std::uint64_t scheduled_ns = start_ns + k * interval_ns;
        const std::uint64_t now = NowNs();
        if (scheduled_ns > now) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(scheduled_ns - now));
        }
        RequestRecord* slot = &mix.records[c * args.requests + k];
        workers.emplace_back([&, slot, scheduled_ns] {
          ResolveRequest request;
          request.budget = args.batch;
          request.max_batch = args.batch;
          request.client_id = spec.id;
          request.priority = spec.priority;
          request.deadline_ms = spec.deadline ? args.deadline_ms : 0;
          slot->priority = spec.priority;
          slot->slice = path.Serve(request);
          slot->latency_ms =
              static_cast<double>(NowNs() - scheduled_ns) / 1e6;
          slot->issued = true;
        });
      }
      for (std::thread& w : workers) w.join();
    });
  }
  for (std::thread& d : dispatchers) d.join();
  mix.wall_ms = static_cast<double>(NowNs() - start_ns) / 1e6;
  return mix;
}

/// Mean per-request service time of `probes` fresh slices — the capacity
/// model the offered rate and the shed configuration are derived from.
std::uint64_t CalibrateServiceNs(const ProfileStore& store,
                                 const ResolverOptions& options,
                                 std::uint64_t batch, int probes) {
  std::unique_ptr<Resolver> resolver =
      sper::bench::CreateResolverOrDie(store, options);
  std::uint64_t total_ns = 0;
  int counted = 0;
  for (int i = 0; i < probes; ++i) {
    ResolveRequest request;
    request.budget = batch;
    request.max_batch = batch;
    const std::uint64_t before = NowNs();
    ResolveResult slice = resolver->Serve(request);
    total_ns += NowNs() - before;
    ++counted;
    if (slice.stream_exhausted) break;
  }
  return counted > 0 ? std::max<std::uint64_t>(total_ns / counted, 1) : 1;
}

}  // namespace

int main(int argc, char** argv) {
  LoadArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--dataset=", 10) == 0) {
      args.dataset = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--method=", 9) == 0) {
      args.method = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      args.requests = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      args.batch = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--overload=", 11) == 0) {
      args.overload = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      args.deadline_ms = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--depth=", 8) == 0) {
      args.depth = std::strtoul(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_path = argv[i] + 7;
    } else {
      std::printf(
          "usage: %s [--scale=S] [--dataset=NAME] [--method=M] "
          "[--requests=R] [--batch=B] [--overload=F] [--deadline-ms=MS] "
          "[--depth=N] [--json=PATH]\n",
          argv[0]);
      return 2;
    }
  }
  const std::optional<MethodId> method = ParseMethodId(args.method);
  if (!method.has_value()) {
    std::fprintf(stderr, "unknown method '%s'\n", args.method.c_str());
    return 2;
  }

  DatagenOptions gen;
  gen.scale = args.scale;
  Result<DatasetBundle> dataset = GenerateDataset(args.dataset, gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  ResolverOptions options;
  options.method = *method;

  // Capacity model: mean service time of a fresh drain's slices. The mix
  // offers `overload`x that rate, split over 4 clients; qos_shed's
  // per-client rate limit is each client's sustainable (1x) share.
  const std::uint64_t service_ns =
      CalibrateServiceNs(store, options, args.batch, 16);
  const double capacity_rps = 1e9 / static_cast<double>(service_ns);
  const double offered_rps = args.overload * capacity_rps;
  const std::vector<ClientSpec> clients = {
      {1, Priority::kInteractive, true},
      {2, Priority::kInteractive, true},
      {3, Priority::kBatch, false},
      {4, Priority::kBestEffort, false},
  };
  const double per_client_rate = offered_rps / clients.size();
  const double sustainable_per_client = capacity_rps / clients.size();

  std::printf(
      "dataset %s: %zu profiles (scale %.2f), method %s, batch %llu\n"
      "calibrated service %.3f ms/request => capacity %.0f req/s; "
      "offering %.0fx = %.0f req/s over %zu clients "
      "(2 interactive + 1 batch + 1 best_effort), %llu requests each\n",
      dataset.value().name.c_str(), store.size(), args.scale,
      std::string(ToString(*method)).c_str(),
      static_cast<unsigned long long>(args.batch),
      static_cast<double>(service_ns) / 1e6, capacity_rps, args.overload,
      offered_rps, clients.size(),
      static_cast<unsigned long long>(args.requests));

  // The un-batched reference drain every configuration's admitted stream
  // must be a prefix of.
  std::vector<Comparison> reference;
  {
    std::unique_ptr<Resolver> resolver =
        sper::bench::CreateResolverOrDie(store, options);
    for (;;) {
      ResolveRequest request;
      request.budget = 1u << 20;
      request.max_batch = 1u << 20;
      ResolveResult slice = resolver->Serve(request);
      reference.insert(reference.end(), slice.comparisons.begin(),
                       slice.comparisons.end());
      if (slice.stream_exhausted || slice.comparisons.empty()) break;
    }
  }

  struct PathSpec {
    const char* name;
    bool use_qos;
    bool shed;
  };
  const std::array<PathSpec, 3> paths = {{
      {"fifo", false, false},
      {"qos_noshed", true, false},
      {"qos_shed", true, true},
  }};

  TextTable table({"path", "class", "issued", "served", "sheds", "evicts",
                   "p50 (ms)", "p99 (ms)", "goodput", "digest"});
  std::vector<sper::bench::JsonRecord> json;
  std::array<double, 2> interactive_p99{};  // [noshed, shed]
  bool digests_ok = true;

  for (const PathSpec& spec : paths) {
    std::unique_ptr<Resolver> resolver =
        sper::bench::CreateResolverOrDie(store, options);
    std::unique_ptr<serving::QosAdmissionController> qos;
    if (spec.use_qos) {
      serving::QosOptions qos_options;
      if (spec.shed) {
        qos_options.client_rate = sustainable_per_client;
        qos_options.max_queue_depth = args.depth;
      } else {
        qos_options.shed_enabled = false;
        qos_options.evict_doomed = false;
        qos_options.max_queue_depth = 0;
      }
      qos = std::make_unique<serving::QosAdmissionController>(*resolver,
                                                              qos_options);
      qos->PrimeServiceEstimate(service_ns);
    }
    const ServePath path{resolver.get(), qos.get()};
    MixResult mix = RunMix(path, clients, args, per_client_rate);

    // Digest: admitted slices, concatenated in ticket order, vs the
    // reference prefix of the same length.
    std::vector<const ResolveResult*> admitted;
    for (const RequestRecord& r : mix.records) {
      if (r.issued && r.slice.admitted()) admitted.push_back(&r.slice);
    }
    std::sort(admitted.begin(), admitted.end(),
              [](const ResolveResult* a, const ResolveResult* b) {
                return a->ticket < b->ticket;
              });
    DrainResult actual, expected;
    for (const ResolveResult* slice : admitted) {
      for (const Comparison& c : slice->comparisons) actual.Fold(c);
    }
    for (std::uint64_t i = 0; i < actual.emitted && i < reference.size();
         ++i) {
      expected.Fold(reference[i]);
    }
    const bool match = actual.emitted <= reference.size() &&
                       actual.SameStream(expected);
    digests_ok = digests_ok && match;

    sper::bench::JsonRecord record;
    record.dataset = dataset.value().name;
    record.scale = args.scale;
    record.path = spec.name;
    record.wall_ms = mix.wall_ms;
    record.batch_size = static_cast<std::size_t>(args.batch);
    record.extras.emplace_back("capacity_rps", capacity_rps);
    record.extras.emplace_back("offered_rps", offered_rps);
    record.extras.emplace_back("emitted",
                               static_cast<double>(actual.emitted));
    record.extras.emplace_back("digest_match", match ? 1.0 : 0.0);

    for (std::size_t p = 0; p < kNumPriorities; ++p) {
      const auto priority = static_cast<Priority>(p);
      std::vector<double> served_ms;
      std::uint64_t issued = 0, served = 0, sheds = 0, evicts = 0;
      for (const RequestRecord& r : mix.records) {
        if (!r.issued || r.priority != priority) continue;
        ++issued;
        switch (r.slice.outcome) {
          case ResolveOutcome::kServed:
            ++served;
            served_ms.push_back(r.latency_ms);
            break;
          case ResolveOutcome::kDeadlineExpired:
            served_ms.push_back(r.latency_ms);  // admitted, but too late
            break;
          case ResolveOutcome::kShed:
            ++sheds;
            break;
          case ResolveOutcome::kEvicted:
            ++evicts;
            break;
          default:
            break;
        }
      }
      if (issued == 0) continue;
      const double p50 = Percentile(served_ms, 0.50);
      const double p99 = Percentile(served_ms, 0.99);
      const double goodput =
          static_cast<double>(served) / static_cast<double>(issued);
      if (priority == Priority::kInteractive) {
        if (std::strcmp(spec.name, "qos_noshed") == 0) {
          interactive_p99[0] = p99;
        } else if (std::strcmp(spec.name, "qos_shed") == 0) {
          interactive_p99[1] = p99;
        }
      }
      const std::string cls(ToString(priority));
      table.AddRow({spec.name, cls, std::to_string(issued),
                    std::to_string(served), std::to_string(sheds),
                    std::to_string(evicts), FormatDouble(p50, 2),
                    FormatDouble(p99, 2), FormatDouble(goodput, 3),
                    match ? "match" : "MISMATCH"});
      record.extras.emplace_back(cls + "_p50_ms", p50);
      record.extras.emplace_back(cls + "_p99_ms", p99);
      record.extras.emplace_back(cls + "_goodput", goodput);
      record.extras.emplace_back(cls + "_served",
                                 static_cast<double>(served));
      record.extras.emplace_back(cls + "_sheds",
                                 static_cast<double>(sheds));
      record.extras.emplace_back(cls + "_evictions",
                                 static_cast<double>(evicts));
    }
    json.push_back(std::move(record));
  }
  table.Print();
  std::printf(
      "\nlatency is scheduled-arrival to completion (open loop: backlog "
      "surfaces as\nlatency, not reduced offered rate); percentiles are "
      "over admitted requests;\ngoodput = served in full / issued. "
      "\"match\" means the path's admitted slices,\nin ticket order, are "
      "a bit-identical prefix of one un-batched drain.\n");
  std::printf(
      "interactive p99: shed off %.2f ms -> shed on %.2f ms\n",
      interactive_p99[0], interactive_p99[1]);

  if (!args.json_path.empty() &&
      !sper::bench::WriteJsonRecords(args.json_path, json)) {
    return 1;
  }
  if (!digests_ok) {
    std::fprintf(stderr,
                 "FAIL: an admitted stream diverged from the reference "
                 "drain\n");
    return 1;
  }
  if (interactive_p99[1] >= interactive_p99[0]) {
    std::fprintf(stderr,
                 "FAIL: shedding did not improve interactive p99 "
                 "(%.2f ms with vs %.2f ms without)\n",
                 interactive_p99[1], interactive_p99[0]);
    return 1;
  }
  return 0;
}
